// Guard-facing engine APIs: telemetry snapshots, health probes, patrol
// scrub routed through the shard locks, and online degraded-mode
// migration. The health supervisor (internal/guard) drives all of these
// between demand batches; none of them quiesces the whole engine.

package engine

import (
	"chipkillpm/internal/core"
)

// Telemetry aggregates every shard's per-chip error telemetry. Like
// Stats, each shard is snapshotted under its own lock: safe concurrently
// with demand traffic, consistent per shard, not a single rank-wide
// instant. Chip-level FailedAccesses counters are absolute (every shard
// reads the same chips), so they are adopted once rather than summed.
func (e *Engine) Telemetry() core.Telemetry {
	var total core.Telemetry
	for _, s := range e.shards {
		s.mu.Lock()
		snap := s.ctrl.Telemetry()
		s.mu.Unlock()
		total.Add(snap)
	}
	return total
}

// ProbeVLEW decodes one VLEW of one chip under the owning bank's shard
// lock, without write-back, reporting whether it decoded — the
// supervisor's transient-vs-permanent discriminator.
func (e *Engine) ProbeVLEW(chip, bank, row, v int) bool {
	s := e.shards[bank%len(e.shards)]
	s.mu.Lock()
	ok := s.ctrl.ProbeVLEW(chip, bank, row, v)
	s.mu.Unlock()
	return ok
}

// PatrolScrub advances the patrol scan by count units, routing each
// same-bank run of positions to the shard owning that bank, so patrol
// interleaves with demand traffic instead of quiescing it. During an
// online migration the controllers pause patrol (position comes back
// unchanged) and PatrolScrub returns early.
//
//chipkill:rankwide
func (e *Engine) PatrolScrub(pos int64, count int) (next int64, corrected int64) {
	for count > 0 {
		p, run, sh := e.patrolRun(pos)
		if run > int64(count) {
			run = int64(count)
		}
		// Patrol write-backs repair data cells in place, so the run opens
		// a writer section: racing lock-free readers of the same bank
		// discard their gathers instead of consuming half-applied fixes.
		s := e.shards[sh]
		s.lockWrite()
		np, f := s.ctrl.PatrolScrub(p, int(run))
		s.unlockWrite()
		corrected += f
		if np == p {
			return p, corrected // paused mid-migration
		}
		pos = np
		count -= int(run)
	}
	return pos, corrected
}

// patrolRun normalises a patrol position and returns the length of the
// same-bank run starting there plus the owning shard. In the original
// layout positions walk (chip, bank, row, vlew); in degraded mode they
// walk striped groups, whose rows interleave across banks.
func (e *Engine) patrolRun(pos int64) (p, run int64, sh int) {
	g := e.rank.Config().Geometry
	if deg, _ := e.Degraded(); deg {
		groupsPerRow := e.bpr / core.StripedBlocksPerVLEW
		total := e.rank.Blocks() / core.StripedBlocksPerVLEW
		pos %= total
		bank := (pos / groupsPerRow) % e.banks
		return pos, groupsPerRow - pos%groupsPerRow, int(bank % int64(len(e.shards)))
	}
	vpr := int64(g.VLEWsPerRow())
	perBank := int64(g.RowsPerBank) * vpr
	perChip := int64(g.Banks) * perBank
	pos %= int64(e.rank.NumChips()) * perChip
	bank := (pos % perChip) / perBank
	return pos, perBank - (pos%perChip)%perBank, int(bank % int64(len(e.shards)))
}

// BeginMigration starts an online degraded-mode migration: the leader
// shard creates the shared cursor state and every other shard joins it,
// each under its own lock — no global quiesce. With a nonzero cursor
// (resuming from a recovery journal) the call must complete before
// demand traffic starts, since a shard that has not yet joined would
// read already-striped blocks under the original layout.
//
//chipkill:rankwide
func (e *Engine) BeginMigration(failedChip int, cursor int64) (*core.MigrationState, error) {
	s0 := e.shards[0]
	s0.mu.Lock()
	m, err := s0.ctrl.BeginMigration(failedChip, cursor)
	s0.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Publish to lock-free readers before returning — no cells have moved
	// yet (plain shard locks suffice above; Begin/Join only set controller
	// state, which lock-free readers never consult), but once the caller
	// holds m it may start migrating bands, and from then on every block
	// below the cursor must stand down to the locked path.
	e.mig.Store(m)
	for _, s := range e.shards[1:] {
		s.mu.Lock()
		jerr := s.ctrl.JoinMigration(m)
		s.mu.Unlock()
		if jerr != nil {
			return nil, jerr
		}
	}
	return m, nil
}

// MigrateBand migrates the band at the cursor under its owning shard's
// lock, passing the write-ahead image to wal first (see
// core.Controller.MigrateBand). Only one migrator — the supervisor — may
// drive this; demand traffic to every other bank proceeds concurrently,
// and traffic to the band's own bank simply waits its turn on the shard
// lock like any other operation.
//
//chipkill:rankwide
func (e *Engine) MigrateBand(m *core.MigrationState, wal func(failedSlices []byte) error) error {
	first := m.Cursor()
	s := e.shards[e.shardOf(first)]
	// A band rewrite is the longest writer section in the system; the
	// sequence bumps make racing lock-free readers of the band's bank
	// park on the mutex rather than consume a half-rewritten band. The
	// cursor advances inside the section, so by the time the sequence is
	// even again the migrated blocks route to the locked striped path.
	s.lockWrite()
	err := s.ctrl.MigrateBand(first, wal)
	s.unlockWrite()
	return err
}

// RedoBand replays a journaled band rewrite at the cursor during crash
// recovery (see core.Controller.RedoBand).
//
//chipkill:rankwide
func (e *Engine) RedoBand(m *core.MigrationState, failedSlices []byte) error {
	first := m.Cursor()
	s := e.shards[e.shardOf(first)]
	s.lockWrite()
	err := s.ctrl.RedoBand(first, failedSlices)
	s.unlockWrite()
	return err
}

// FinishMigration completes a migration whose cursor has reached the end
// of the rank, flipping each shard to plain degraded mode under its own
// lock — safe without quiescence, since with the cursor at the end both
// states route every block through the striped layout.
//
//chipkill:rankwide
func (e *Engine) FinishMigration() error {
	// Latch degraded before any shard flips: lock-free readers must stop
	// trusting original-layout gathers the moment the first controller
	// starts routing every block through the striped layout.
	e.degraded.Store(true)
	for _, s := range e.shards {
		s.lockWrite()
		err := s.ctrl.FinishMigration()
		s.unlockWrite()
		if err != nil {
			return err
		}
	}
	return nil
}

// AdoptDegradedMode switches every shard to the degraded layout without
// touching the chips — crash recovery after a journal records the
// migration as complete, where the striped format is already on the rank.
//
//chipkill:rankwide
func (e *Engine) AdoptDegradedMode(failedChip int) error {
	// Same one-way latch as FinishMigration: the striped format is
	// already on the chips, so an original-layout gather that happened to
	// satisfy the RS check would be silent corruption.
	e.degraded.Store(true)
	for _, s := range e.shards {
		s.lockWrite()
		err := s.ctrl.AdoptDegradedMode(failedChip)
		s.unlockWrite()
		if err != nil {
			return err
		}
	}
	return nil
}

// Migrating returns the active migration state, or nil.
func (e *Engine) Migrating() *core.MigrationState {
	s := e.shards[0]
	s.mu.Lock()
	m := s.ctrl.Migrating()
	s.mu.Unlock()
	return m
}

// BandBlocks returns the online-migration band size in blocks.
func (e *Engine) BandBlocks() int64 {
	return int64(e.rank.Config().Geometry.VLEWDataBytes / e.rank.Config().ChipAccessBytes)
}

// TotalPatrolUnits returns the patrol position space of the current
// layout (shard 0's view).
func (e *Engine) TotalPatrolUnits() int64 {
	s := e.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.TotalPatrolUnits()
}
