// Package d holds deliberately malformed //chipkill: directives; the
// suite's validator must reject each one (see directive_test.go — the
// expectations live there because a malformed directive's own line
// cannot also carry a want comment without changing how it parses).
package d

import "sync"

//chipkill:frobnicate
var mu sync.Mutex

func misplaced() {
	//chipkill:noalloc
	mu.Lock()
	mu.Unlock()
}

func missingAnalyzer() {
	//chipkill:allow
	mu.Lock()
	mu.Unlock()
}

func unknownAnalyzer() {
	//chipkill:allow frobcheck spurious finding
	mu.Lock()
	mu.Unlock()
}

func missingReason() {
	//chipkill:allow noalloc
	mu.Lock()
	mu.Unlock()
}

// wellFormed carries a valid allow that must produce no diagnostic.
func wellFormed() {
	//chipkill:allow sentinel example of a well-formed directive
	mu.Lock()
	mu.Unlock()
}
