package gf

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the field kernels at the sizes the codecs use:
// GF(2^8) slices of 64 B (one RS data block) and raw byte XOR at 256 B
// (one VLEW write-back).

func benchElems(n int, seed int64) []Elem {
	rng := rand.New(rand.NewSource(seed))
	s := make([]Elem, n)
	for i := range s {
		s[i] = Elem(rng.Intn(256))
	}
	return s
}

func BenchmarkKernelMulElementwise(b *testing.B) {
	f := MustField(8)
	src := benchElems(64, 1)
	c := Elem(0x57)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range src {
			_ = f.Mul(c, s)
		}
	}
}

func BenchmarkKernelMulTable(b *testing.B) {
	f := MustField(8)
	src := benchElems(64, 1)
	t := f.MulTable(0x57)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range src {
			_ = t[s]
		}
	}
}

func BenchmarkKernelMulAddBytes(b *testing.B) {
	f := MustField(8)
	t := f.MulTable(0x57)
	src := make([]byte, 64)
	dst := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.MulAddBytes(dst, src)
	}
}

func BenchmarkKernelMulSlice(b *testing.B) {
	f := MustField(8)
	x := benchElems(64, 3)
	y := benchElems(64, 4)
	dst := make([]Elem, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MulSlice(dst, x, y)
	}
}

func BenchmarkKernelXORBytesLoop(b *testing.B) {
	src := make([]byte, 256)
	dst := make([]byte, 256)
	rand.New(rand.NewSource(5)).Read(src)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] ^= src[j]
		}
	}
}

func BenchmarkKernelXORBytes(b *testing.B) {
	src := make([]byte, 256)
	dst := make([]byte, 256)
	rand.New(rand.NewSource(5)).Read(src)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORBytes(dst, src)
	}
}
