// Package core implements the paper's primary contribution: an efficient
// chipkill-correct scheme for dense NVRAM-based persistent memory that
// decouples boot-time error correction from runtime error correction.
//
// At boot (Sec V-B), when the memory may have gone a week to a year
// without refresh and the raw bit error rate is high, the controller
// scrubs every VLEW — a 22-bit-error-correcting BCH word spanning 256 B of
// per-chip data — and uses the parity chip's per-block Reed-Solomon check
// bytes to reconstruct any chip whose VLEWs are uncorrectable.
//
// At runtime (Sec V-C), the controller reuses each block's eight RS check
// bytes to opportunistically correct bit errors, accepting the result only
// when at most two corrections were needed (miscorrections overwhelmingly
// surface as many corrections); otherwise it falls back to fetching the
// VLEWs, leaving the RS code free to handle chip failures.
//
// On writes (Sec V-D), the controller sends the bitwise XOR of old and new
// data so NVRAM chips can recover the new data internally and fold the
// VLEW code-bit update into their ECC Update Registerfiles; the old memory
// value comes from the LLC's OMV-preserving cache when possible.
package core

import (
	"errors"
	"fmt"
	"sync"

	"chipkillpm/internal/rank"
	"chipkillpm/internal/rs"
)

// ErrUncorrectable reports a detected-but-uncorrectable error (DUE): the
// block's data could not be recovered by any layer of the scheme.
var ErrUncorrectable = errors.New("core: uncorrectable error")

// ErrBlockDisabled reports access to a block retired for wear-out.
var ErrBlockDisabled = errors.New("core: block is disabled")

// ErrChipFailed reports an operation that cannot proceed because a chip
// (or one chip too many) is failed: remapping around a second failure,
// migrating with a dead parity chip, and similar chip-level dead ends.
var ErrChipFailed = errors.New("core: chip failed")

// ErrMigrationInProgress reports an operation that conflicts with an
// active online degraded-mode migration (e.g. starting a second one or
// entering stop-the-world degraded mode mid-migration).
var ErrMigrationInProgress = errors.New("core: migration in progress")

// OMVProvider supplies old memory values (OMVs) of dirty persistent-memory
// blocks, normally the LLC with SAM/OMV tag bits (Sec V-D). A provider
// returning (nil, false) forces the controller to fetch the OMV from
// memory, paying the read-modify-write bandwidth.
type OMVProvider interface {
	// OMV returns the block's old memory value if the provider holds it.
	OMV(block int64) ([]byte, bool)
}

// NoOMV is an OMVProvider that never hits; every write pays an OMV fetch
// from memory. Useful as an ablation baseline.
type NoOMV struct{}

// OMV implements OMVProvider.
func (NoOMV) OMV(int64) ([]byte, bool) { return nil, false }

// Stats counts controller activity. BlockFetches approximates bus traffic
// in 64B-block transfers, the unit behind the paper's bandwidth-overhead
// numbers.
//
// Concurrency: demand-path methods (ReadBlock, WriteBlock, ...) mutate the
// counters without locking, matching the Controller's single-owner
// contract. BootScrub and PatrolScrub instead publish their counter
// updates under an internal lock, so Stats and ResetStats MAY be called
// concurrently with either scrub (e.g. a boot-progress monitor) but MUST
// NOT race demand reads or writes.
type Stats struct {
	Reads  int64
	Writes int64

	// Runtime read outcomes (Fig 9).
	ReadsClean        int64 // no RS corrections needed
	ReadsRSCorrected  int64 // accepted opportunistic RS correction (<= threshold)
	ReadsVLEWFallback int64 // exceeded threshold or RS-uncorrectable; VLEWs fetched

	BitsCorrectedRS   int64 // symbols corrected by accepted RS decodes
	BitsCorrectedVLEW int64 // bits corrected through VLEW fallback/scrub

	ChipFailuresCorrected int64
	Uncorrectable         int64

	// Write path.
	OMVHits   int64 // old value supplied by the LLC
	OMVMisses int64 // old value fetched from memory (extra read + send-back)

	// Bus traffic in block transfers.
	BlockFetches int64 // reads issued to the rank, incl. VLEW fetches
	BlockWrites  int64 // write transfers to the rank

	// Boot scrub.
	ScrubbedVLEWs      int64
	ScrubCorrections   int64 // bit corrections applied during scrub
	ScrubUncorrectable int64

	// Online degraded-mode migration (internal/guard): whole bands (one
	// old-layout VLEW span) rewritten into the striped layout.
	BandsMigrated int64
}

// Add accumulates o into s field by field; scrubs use it to publish their
// whole contribution in one locked step, and the sharded engine uses it to
// aggregate per-shard controller snapshots on demand.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadsClean += o.ReadsClean
	s.ReadsRSCorrected += o.ReadsRSCorrected
	s.ReadsVLEWFallback += o.ReadsVLEWFallback
	s.BitsCorrectedRS += o.BitsCorrectedRS
	s.BitsCorrectedVLEW += o.BitsCorrectedVLEW
	s.ChipFailuresCorrected += o.ChipFailuresCorrected
	s.Uncorrectable += o.Uncorrectable
	s.OMVHits += o.OMVHits
	s.OMVMisses += o.OMVMisses
	s.BlockFetches += o.BlockFetches
	s.BlockWrites += o.BlockWrites
	s.ScrubbedVLEWs += o.ScrubbedVLEWs
	s.ScrubCorrections += o.ScrubCorrections
	s.ScrubUncorrectable += o.ScrubUncorrectable
	s.BandsMigrated += o.BandsMigrated
}

// Config tunes the controller.
type Config struct {
	// Threshold is the maximum number of RS corrections accepted at
	// runtime before falling back to VLEWs (2 in the paper, Sec V-C).
	Threshold int
	// WriteBackVLEWCorrections re-writes blocks repaired via the VLEW
	// fallback path, scrubbing their errors (off in the paper's model,
	// which assumes no free scrubbing; exposed for ablation).
	WriteBackVLEWCorrections bool
	// ScrubWorkers sets the boot-scrub worker-pool size. Workers scan
	// disjoint (chip, bank) shards, so results are independent of the
	// worker count. Zero means GOMAXPROCS; negative is rejected.
	ScrubWorkers int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config { return Config{Threshold: 2} }

// Controller drives one persistent-memory rank with the proposed scheme.
// It is not safe for concurrent use, mirroring a per-channel controller,
// with one documented exception: Stats and ResetStats take an internal
// lock and may run concurrently with BootScrub and PatrolScrub (see the
// Stats type's concurrency note).
type Controller struct {
	rank     *rank.Rank
	rsCode   *rs.Code
	cfg      Config
	omv      OMVProvider
	disabled map[int64]bool

	// statsMu serialises Stats/ResetStats against the scrubs' batched
	// counter publication. Demand paths mutate stats without it. The
	// per-chip telemetry shares the lock and the contract.
	//chipkill:lock core.stats level=50
	statsMu sync.Mutex
	stats   Stats
	tel     Telemetry

	// Degraded (remapped) mode, Sec V-E: the failed data chip's contents
	// live in the parity chip and VLEWs are striped across the rank.
	degraded   bool
	failedChip int

	// mig, when non-nil, is an online migration to degraded mode in
	// flight: blocks below the shared cursor are already in the striped
	// layout, blocks at or above it still use the original one. The
	// pointer is shared by every controller over the rank (all engine
	// shards) so the cursor is a rank-wide property.
	mig *MigrationState

	// Persistent working buffers for the demand paths. The single-owner
	// contract means at most one demand operation is in flight, so one set
	// per controller makes steady-state reads and writes allocation-free.
	readCheckBuf []byte // RS check bytes of the block being read
	vlewCheckBuf []byte // check bytes recovered from the parity chip's VLEW
	deltaBuf     []byte // old XOR new data for writes
	checkDelta   []byte // RS check delta for writes
	internalBuf  []byte // OMV fetches and other internal reads
	erasureIdx   []int  // erasure positions for chip-failure decodes

	// Correction-path scratch, reused across corrections so reads under
	// drift stay allocation-free: RS corrections land in corrBuf via the
	// DecodeAppend family, and the VLEW fallback gathers each chip's VLEW
	// into one reusable data/code pair.
	corrBuf        []rs.Correction
	vlewDataBuf    []byte
	vlewCodeBuf    []byte
	failedChipsBuf []int
}

// NewController wires a controller to a rank. The rank must use the
// paper's 8-byte chip access so that one block carries 64 data bytes and 8
// RS check bytes. omv may be nil, meaning writes always fetch OMVs from
// memory.
func NewController(r *rank.Rank, cfg Config, omv OMVProvider) (*Controller, error) {
	bb := r.Config().BlockBytes()
	checkBytes := r.Config().ChipAccessBytes
	code, err := rs.New(bb, checkBytes)
	if err != nil {
		return nil, fmt.Errorf("core: sizing per-block RS: %w", err)
	}
	if cfg.Threshold < 0 || cfg.Threshold > code.MaxErrors() {
		return nil, fmt.Errorf("core: threshold %d outside [0,%d]", cfg.Threshold, code.MaxErrors())
	}
	if cfg.ScrubWorkers < 0 {
		return nil, fmt.Errorf("core: scrub workers %d must be >= 0", cfg.ScrubWorkers)
	}
	if omv == nil {
		omv = NoOMV{}
	}
	return &Controller{
		rank:         r,
		rsCode:       code,
		cfg:          cfg,
		omv:          omv,
		tel:          Telemetry{Chips: make([]ChipTelemetry, r.NumChips())},
		disabled:     make(map[int64]bool),
		readCheckBuf: make([]byte, checkBytes),
		vlewCheckBuf: make([]byte, checkBytes),
		deltaBuf:     make([]byte, bb),
		checkDelta:   make([]byte, checkBytes),
		internalBuf:  make([]byte, bb),
		erasureIdx:   make([]int, checkBytes),

		corrBuf:        make([]rs.Correction, 0, checkBytes),
		vlewDataBuf:    make([]byte, r.Config().Geometry.VLEWDataBytes),
		vlewCodeBuf:    make([]byte, r.Config().Geometry.VLEWCodeBytes),
		failedChipsBuf: make([]int, 0, r.NumChips()),
	}, nil
}

// Rank returns the underlying rank.
func (c *Controller) Rank() *rank.Rank { return c.rank }

// RS returns the per-block Reed-Solomon code.
func (c *Controller) RS() *rs.Code { return c.rsCode }

// Stats returns a snapshot of the controller's counters. It is safe to
// call concurrently with BootScrub and PatrolScrub, but not with demand
// reads/writes (see the Stats type's concurrency note).
func (c *Controller) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters (e.g. after warmup). Same concurrency
// contract as Stats.
func (c *Controller) ResetStats() {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.stats = Stats{}
}

// addStats publishes a batched counter delta under the stats lock; the
// scrubs use it so monitors can snapshot concurrently.
func (c *Controller) addStats(d Stats) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	c.stats.Add(d)
}

// DisableBlock retires a worn-out block (Sec V-E). The VLEW code bits are
// updated as if the block's physical bits were zero, keeping the VLEW
// decodable for its surviving blocks.
func (c *Controller) DisableBlock(block int64) {
	if c.disabled[block] {
		return
	}
	// Zero the block's contribution so VLEW code bits stay consistent:
	// writing zeros via the normal XOR path updates data and code bits
	// together. Blocks already in the striped layout instead take the
	// degraded write path, which maintains the striped code word.
	if data, err := c.readForInternalUse(block); err == nil {
		if c.blockStriped(block) {
			c.writeDegraded(block, make([]byte, len(data)))
		} else {
			c.writeDelta(block, data) // delta = current XOR zero = current
		}
	}
	c.disabled[block] = true
}

// BlockDisabled reports whether a block has been retired.
func (c *Controller) BlockDisabled(block int64) bool { return c.disabled[block] }

// ReadBlock implements the runtime read path (Fig 9): RS-check the block,
// accept opportunistic correction up to the threshold, otherwise fall back
// to VLEW correction, and treat a VLEW-uncorrectable chip as failed.
func (c *Controller) ReadBlock(block int64) ([]byte, error) {
	dst := make([]byte, c.rank.Config().BlockBytes())
	if err := c.ReadBlockInto(block, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// ReadBlockInto is ReadBlock into a caller-owned buffer of BlockBytes().
// The steady-state (clean or RS-corrected) path performs zero allocations:
// chips copy straight into dst, the RS check runs one table-driven pass,
// and all scratch lives in per-controller buffers or the decoder pool. On
// error, dst's contents are unspecified.
//
//chipkill:noalloc
func (c *Controller) ReadBlockInto(block int64, dst []byte) error {
	if len(dst) != c.rank.Config().BlockBytes() {
		//chipkill:allow noalloc caller bug, not a demand read
		return fmt.Errorf("core: ReadBlockInto: got %d byte buffer, want %d", len(dst), c.rank.Config().BlockBytes())
	}
	if c.disabled[block] {
		//chipkill:allow noalloc disabled-block error path is cold
		return fmt.Errorf("block %d: %w", block, ErrBlockDisabled)
	}
	c.stats.Reads++
	if c.blockStriped(block) {
		//chipkill:allow noalloc striped reads gather via the migration scratch; only the original layout is on the zero-alloc contract
		data, err := c.readDegraded(block)
		if err != nil {
			return err
		}
		copy(dst, data)
		return nil
	}
	return c.readCorrectedInto(dst, block)
}

// blockStriped reports whether a block must be accessed through the
// striped (degraded) layout: always once degraded mode is adopted, and
// during an online migration for every block the cursor has passed. The
// cursor is loaded after the caller has taken the block's bank lock (or
// owns the controller outright), and bands only migrate under their own
// bank's lock, so the answer cannot change while the operation runs.
func (c *Controller) blockStriped(block int64) bool {
	if c.degraded {
		return true
	}
	return c.mig != nil && block < c.mig.Cursor()
}

// readForInternalUse reads and corrects a block without counting it as a
// demand read. The returned slice aliases the controller's internal buffer
// and is valid until the next internal read.
func (c *Controller) readForInternalUse(block int64) ([]byte, error) {
	if c.blockStriped(block) {
		return c.readDegraded(block)
	}
	if err := c.readCorrectedInto(c.internalBuf, block); err != nil {
		return nil, err
	}
	return c.internalBuf, nil
}

// readCorrectedInto is the zero-alloc demand read body: raw fetch, RS
// check, and only on failure the allocating correction machinery.
//
//chipkill:noalloc
func (c *Controller) readCorrectedInto(dst []byte, block int64) error {
	c.rank.ReadBlockRawInto(block, dst, c.readCheckBuf)
	c.stats.BlockFetches++
	// Fast path: most reads are clean, and Check is one sliced LFSR pass
	// plus an 8-byte compare — no decoder setup, no allocations.
	if c.rsCode.Check(dst, c.readCheckBuf) {
		c.stats.ReadsClean++
		return nil
	}
	//chipkill:allow noalloc decode draws from its scratch pool and appends into the pre-sized corrBuf; single-symbol drift corrections run allocation-free end to end
	corrections, err := c.rsCode.DecodeLimitedAppend(c.corrBuf, dst, c.readCheckBuf, c.cfg.Threshold)
	if err == nil {
		c.stats.ReadsRSCorrected++
		c.stats.BitsCorrectedRS += int64(len(corrections))
		for _, corr := range corrections {
			c.tel.Chips[c.chipOfSymbol(corr.Pos)].RSCorrections++
		}
		return nil
	}
	// Threshold exceeded or RS-uncorrectable: VLEW fallback (Sec V-C).
	c.stats.ReadsVLEWFallback++
	//chipkill:allow noalloc VLEW fallback models extra device traffic; allocation is the least of its costs
	return c.vlewCorrectBlockInto(dst, block)
}

// vlewCorrectBlockInto corrects one block through the VLEWs of every chip,
// then lets the per-block RS handle any chip whose VLEW was uncorrectable
// (a chip-level fault) via erasure correction.
func (c *Controller) vlewCorrectBlockInto(dst []byte, block int64) error {
	rcfg := c.rank.Config()
	loc := c.rank.Locate(block)
	v := loc.VLEWIndex(rcfg.Geometry.VLEWDataBytes)
	inOff := loc.Col % rcfg.Geometry.VLEWDataBytes
	n := rcfg.ChipAccessBytes
	code := rcfg.VLEWCode

	// Fetching a VLEW costs its data blocks plus code transfer blocks for
	// each chip in lockstep; the paper counts 36 extra block transfers.
	c.stats.BlockFetches += int64(rcfg.Geometry.VLEWDataBytes/n) +
		int64((rcfg.Geometry.VLEWCodeBytes+n-1)/n)

	check := c.vlewCheckBuf
	checkOK := false
	failedChips := c.failedChipsBuf[:0]
	vData, vCode := c.vlewDataBuf, c.vlewCodeBuf
	for ci := 0; ci < c.rank.NumChips(); ci++ {
		chip := c.rank.Chip(ci)
		chip.ReadVLEWInto(vData, vCode, loc.Bank, loc.Row, v)
		fixed, derr := code.Decode(vData, vCode[:code.ParityBytes()])
		if derr != nil {
			failedChips = append(failedChips, ci)
			c.tel.Chips[ci].VLEWFailures++
			continue
		}
		c.stats.BitsCorrectedVLEW += int64(fixed)
		if ci == c.rank.ParityChipIndex() {
			copy(check, vData[inOff:inOff+n])
			checkOK = true
		} else {
			copy(dst[ci*n:(ci+1)*n], vData[inOff:inOff+n])
		}
	}

	switch len(failedChips) {
	case 0:
		// All chips' bit errors corrected; verify with RS for safety.
		if corr, err := c.rsCode.DecodeAppend(c.corrBuf, dst, check, nil); err == nil {
			c.stats.BitsCorrectedRS += int64(len(corr))
		} else {
			c.stats.Uncorrectable++
			c.tel.DUEs++
			return fmt.Errorf("block %d: VLEW-corrected data fails RS: %w", block, ErrUncorrectable)
		}
	case 1:
		ci := failedChips[0]
		c.stats.ChipFailuresCorrected++
		if ci == c.rank.ParityChipIndex() {
			// Data chips are fine; the check bytes are lost but the data
			// is already corrected.
			break
		}
		if !checkOK {
			c.stats.Uncorrectable++
			c.tel.DUEs++
			return fmt.Errorf("block %d: chip %d failed and parity unavailable: %w", block, ci, ErrUncorrectable)
		}
		// Erase the failed chip's bytes and reconstruct via RS. Erasure
		// decoding replaces whatever the failed chip returned, so dst needs
		// no pre-zeroing.
		erasures := c.erasureIdx[:n]
		for i := 0; i < n; i++ {
			erasures[i] = ci*n + i
		}
		if _, err := c.rsCode.DecodeAppend(c.corrBuf, dst, check, erasures); err != nil {
			c.stats.Uncorrectable++
			c.tel.DUEs++
			return fmt.Errorf("block %d: erasure correction failed: %w", block, ErrUncorrectable)
		}
		c.tel.Chips[ci].ErasureRepairs++
	default:
		c.stats.Uncorrectable++
		c.tel.DUEs++
		return fmt.Errorf("block %d: %d chips uncorrectable: %w", block, len(failedChips), ErrUncorrectable)
	}

	if c.cfg.WriteBackVLEWCorrections {
		c.rank.WriteBlockRaw(block, dst, c.rsCode.Encode(dst))
		c.stats.BlockWrites++
	}
	return nil
}

// WriteBlock implements the runtime write path (Fig 12): obtain the old
// memory value (from the LLC's OMV store when possible, otherwise from
// memory with full correction), then send the bitwise sum of old and new
// data — and of old and new RS check bytes — to the rank.
//
// Both steady-state legs are allocation-free: an OMV hit goes straight to
// writeDelta, and a miss reads the old value into the controller's
// internal buffer through the zero-alloc corrected-read path.
//
//chipkill:noalloc
func (c *Controller) WriteBlock(block int64, newData []byte) error {
	if len(newData) != c.rank.Config().BlockBytes() {
		//chipkill:allow noalloc caller bug, not a demand write
		return fmt.Errorf("core: WriteBlock: got %d bytes, want %d", len(newData), c.rank.Config().BlockBytes())
	}
	if c.disabled[block] {
		//chipkill:allow noalloc disabled-block error path is cold
		return fmt.Errorf("block %d: %w", block, ErrBlockDisabled)
	}
	c.stats.Writes++
	if c.blockStriped(block) {
		//chipkill:allow noalloc striped writes use the migration scratch; only the original layout is on the zero-alloc contract
		return c.writeDegraded(block, newData)
	}
	//chipkill:allow noalloc OMV provider is an interface; the shipped providers (LLC model, NoOMV) do not allocate on lookup
	old, hit := c.omv.OMV(block)
	if hit {
		c.stats.OMVHits++
	} else {
		c.stats.OMVMisses++
		var err error
		//chipkill:allow noalloc internal read lands in the pooled internalBuf; its clean path is the annotated readCorrectedInto
		old, err = c.readForInternalUse(block)
		if err != nil {
			//chipkill:allow noalloc OMV fetch failure is a DUE path, already off the steady state
			return fmt.Errorf("core: fetching OMV for block %d: %w", block, err)
		}
	}
	delta := c.deltaBuf
	for i := range delta {
		delta[i] = old[i] ^ newData[i]
	}
	c.writeDelta(block, delta)
	return nil
}

// writeDelta sends a data delta and the matching RS check delta (linear:
// check(old) XOR check(new) = check(old XOR new)) to the rank as one
// bitwise-sum write.
//
//chipkill:noalloc
func (c *Controller) writeDelta(block int64, delta []byte) {
	c.rsCode.EncodeInto(c.checkDelta, delta)
	c.rank.WriteBlockXOR(block, delta, c.checkDelta)
	c.stats.BlockWrites++
}

// WriteBlockInitial writes a block conventionally (raw data on the bus),
// used to populate memory before measurement and by scrub write-back.
func (c *Controller) WriteBlockInitial(block int64, data []byte) error {
	if len(data) != c.rank.Config().BlockBytes() {
		return fmt.Errorf("core: WriteBlockInitial: got %d bytes, want %d", len(data), c.rank.Config().BlockBytes())
	}
	if c.blockStriped(block) {
		// A raw lockstep write would clobber the remapped parity-chip data
		// and leave the striped code word stale; route through the
		// degraded write path instead.
		return c.writeDegraded(block, data)
	}
	c.rank.WriteBlockRaw(block, data, c.rsCode.Encode(data))
	c.stats.BlockWrites++
	return nil
}
