// Package rs implements Reed-Solomon codes over GF(2^8) with
// errors-and-erasures decoding.
//
// The paper's per-block chip-failure code is RS(72, 64): 64 data bytes from
// eight data chips plus 8 check bytes held in a ninth (parity) chip. Its
// minimum distance is 9, so it can correct any 4 random byte errors, or up
// to 8 byte erasures (a whole failed chip whose position is known), or
// mixes with 2*errors + erasures <= 8.
//
// The scheme additionally uses DecodeLimited: an errors-only decode that
// accepts the result only when it makes at most `threshold` corrections.
// A miscorrection is far more likely to surface as many corrections than
// as few, so capping accepted corrections at 2 drops the silent-data-
// corruption rate from 3.2e-11 to 3.3e-22 (paper appendix) at the cost of
// occasionally falling back to VLEW correction.
package rs

import (
	"errors"
	"fmt"

	"chipkillpm/internal/gf"
)

// ErrUncorrectable reports an error pattern beyond the code's capability.
var ErrUncorrectable = errors.New("rs: uncorrectable error pattern")

// ErrThreshold reports that an errors-only decode succeeded but needed more
// corrections than the caller's acceptance threshold; the input was left
// unmodified and the caller should fall back to a stronger code (VLEWs).
var ErrThreshold = errors.New("rs: corrections exceed acceptance threshold")

// Code is an (n, k) Reed-Solomon code over GF(2^8) with r = n-k check
// symbols and first consecutive root alpha^1. It is immutable and safe for
// concurrent use.
type Code struct {
	f   *gf.Field
	k   int // data symbols (bytes)
	r   int // check symbols (bytes)
	n   int // total symbols
	gen gf.Poly
}

// New constructs an RS code with k data bytes and r check bytes.
func New(k, r int) (*Code, error) {
	f := gf.MustField(8)
	if k < 1 || r < 1 {
		return nil, fmt.Errorf("rs: k=%d, r=%d must be >= 1", k, r)
	}
	if k+r > f.N() {
		return nil, fmt.Errorf("rs: n=%d exceeds field bound %d", k+r, f.N())
	}
	// g(x) = prod_{j=1..r} (x - alpha^j).
	gen := gf.Poly{1}
	for j := 1; j <= r; j++ {
		gen = f.PolyMul(gen, gf.Poly{f.Exp(j), 1})
	}
	return &Code{f: f, k: k, r: r, n: k + r, gen: gen}, nil
}

// Must is New but panics on error.
func Must(k, r int) *Code {
	c, err := New(k, r)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the number of data bytes per codeword.
func (c *Code) K() int { return c.k }

// R returns the number of check bytes per codeword.
func (c *Code) R() int { return c.r }

// N returns the codeword length in bytes.
func (c *Code) N() int { return c.n }

// Distance returns the minimum Hamming distance, r+1.
func (c *Code) Distance() int { return c.r + 1 }

// MaxErrors returns the maximum number of random byte errors correctable
// with no erasures: floor(r/2).
func (c *Code) MaxErrors() int { return c.r / 2 }

// MaxErasures returns the maximum number of byte erasures correctable with
// no random errors: r.
func (c *Code) MaxErasures() int { return c.r }

// codeword coefficient layout: check symbol i sits at polynomial degree i
// (i in [0,r)), data byte j at degree r+j. Position p in the public API
// means data byte p for p < k and check byte p-k for p >= k.

func (c *Code) posToDegree(p int) int {
	if p < c.k {
		return c.r + p
	}
	return p - c.k
}

func (c *Code) degreeToPos(d int) int {
	if d < c.r {
		return c.k + d
	}
	return d - c.r
}

// Encode computes the r check bytes for the k data bytes.
func (c *Code) Encode(data []byte) []byte {
	if len(data) != c.k {
		panic(fmt.Sprintf("rs: Encode: got %d data bytes, want %d", len(data), c.k))
	}
	// Systematic: check(x) = (d(x) * x^r) mod g(x).
	p := make(gf.Poly, c.n)
	for j, b := range data {
		p[c.r+j] = gf.Elem(b)
	}
	_, rem := c.f.PolyDivMod(p, c.gen)
	check := make([]byte, c.r)
	for i := 0; i < c.r && i < len(rem); i++ {
		check[i] = byte(rem[i])
	}
	return check
}

// EncodeDelta returns the check-byte update for a sparse data change:
// XORing the result into the old check bytes yields the check bytes of the
// new data, where delta = old XOR new starting at data byte byteOffset.
// RS over GF(2^8) is linear over GF(2), so incremental update works exactly
// as for BCH.
func (c *Code) EncodeDelta(delta []byte, byteOffset int) []byte {
	if byteOffset < 0 || byteOffset+len(delta) > c.k {
		panic(fmt.Sprintf("rs: EncodeDelta: %d bytes at offset %d overflow k=%d", len(delta), byteOffset, c.k))
	}
	p := make(gf.Poly, c.r+byteOffset+len(delta))
	for j, b := range delta {
		p[c.r+byteOffset+j] = gf.Elem(b)
	}
	_, rem := c.f.PolyDivMod(p, c.gen)
	check := make([]byte, c.r)
	for i := 0; i < c.r && i < len(rem); i++ {
		check[i] = byte(rem[i])
	}
	return check
}

// syndromes returns S_1..S_r and whether all are zero.
func (c *Code) syndromes(data, check []byte) (gf.Poly, bool) {
	syn := make(gf.Poly, c.r)
	clean := true
	for j := 1; j <= c.r; j++ {
		var s gf.Elem
		a := c.f.Exp(j)
		// Horner over the full codeword, highest degree first: data[k-1]
		// has the highest degree r+k-1.
		for i := c.k - 1; i >= 0; i-- {
			s = c.f.Mul(s, a) ^ gf.Elem(data[i])
		}
		for i := c.r - 1; i >= 0; i-- {
			s = c.f.Mul(s, a) ^ gf.Elem(check[i])
		}
		syn[j-1] = s
		if s != 0 {
			clean = false
		}
	}
	return syn, clean
}

// Check reports whether data||check is a clean codeword.
func (c *Code) Check(data, check []byte) bool {
	c.validate(data, check)
	_, clean := c.syndromes(data, check)
	return clean
}

func (c *Code) validate(data, check []byte) {
	if len(data) != c.k || len(check) != c.r {
		panic(fmt.Sprintf("rs: got %d data and %d check bytes, want %d and %d",
			len(data), len(check), c.k, c.r))
	}
}

// berlekampMassey finds the error locator for syndrome sequence seq.
func (c *Code) berlekampMassey(seq gf.Poly) gf.Poly {
	f := c.f
	sigma := gf.Poly{1}
	prev := gf.Poly{1}
	l := 0
	shift := 1
	b := gf.Elem(1)
	for i := 0; i < len(seq); i++ {
		d := seq[i]
		for j := 1; j <= l && j < len(sigma); j++ {
			if i-j >= 0 {
				d ^= f.Mul(sigma[j], seq[i-j])
			}
		}
		if d == 0 {
			shift++
			continue
		}
		scale := f.Div(d, b)
		adj := f.PolyMulXk(f.PolyScale(prev, scale), shift)
		next := f.PolyAdd(sigma, adj)
		if 2*l <= i {
			prev = sigma
			b = d
			l = i + 1 - l
			shift = 1
		} else {
			shift++
		}
		sigma = next
	}
	return sigma
}

// Correction describes one applied symbol correction.
type Correction struct {
	Pos     int  // public position: data byte for Pos < K, check byte K+i otherwise
	Old     byte // symbol value before correction
	New     byte // symbol value after correction
	Erasure bool // true when the position was declared an erasure
}

// Decode corrects errors and erasures in place. erasures lists known-bad
// positions (data byte index for < k, k+i for check byte i); duplicate or
// out-of-range positions are rejected. It returns the corrections applied.
// On ErrUncorrectable, data and check are unchanged.
func (c *Code) Decode(data, check []byte, erasures []int) ([]Correction, error) {
	c.validate(data, check)
	if len(erasures) > c.r {
		return nil, fmt.Errorf("rs: %d erasures exceed capability %d: %w", len(erasures), c.r, ErrUncorrectable)
	}
	seen := map[int]bool{}
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range [0,%d)", p, c.n)
		}
		if seen[p] {
			return nil, fmt.Errorf("rs: duplicate erasure position %d", p)
		}
		seen[p] = true
	}
	f := c.f

	syn, clean := c.syndromes(data, check)
	if clean {
		// Nothing to do; erased positions already hold correct values.
		return nil, nil
	}

	// Erasure locator Gamma(x) = prod (1 - X_i x), X_i = alpha^degree.
	gamma := gf.Poly{1}
	for _, p := range erasures {
		x := f.Exp(c.posToDegree(p))
		gamma = f.PolyMul(gamma, gf.Poly{1, x})
	}

	// Modified (Forney) syndromes: T(x) = S(x)*Gamma(x) mod x^r, then drop
	// the first rho coefficients; BM on the remainder finds the error
	// locator sigma for the non-erased errors.
	t := f.PolyMul(syn, gamma)
	if len(t) > c.r {
		t = t[:c.r]
	}
	for len(t) < c.r {
		t = append(t, 0)
	}
	rho := len(erasures)
	sigma := c.berlekampMassey(t[rho:])
	nu := gf.PolyDeg(sigma)
	if nu < 0 {
		sigma = gf.Poly{1}
		nu = 0
	}
	if 2*nu+rho > c.r {
		return nil, ErrUncorrectable
	}

	// Errata locator and evaluator.
	lambda := f.PolyMul(sigma, gamma)
	omega := f.PolyMul(syn, lambda)
	if len(omega) > c.r {
		omega = omega[:c.r]
	}
	omega = gf.PolyTrim(omega)
	lambdaDeriv := f.PolyDeriv(lambda)

	// Chien search across all n coefficient degrees.
	degLambda := gf.PolyDeg(lambda)
	var corrections []Correction
	found := 0
	for d := 0; d < c.n && found < degLambda; d++ {
		xInv := f.Exp(-d)
		if f.PolyEval(lambda, xInv) != 0 {
			continue
		}
		found++
		denom := f.PolyEval(lambdaDeriv, xInv)
		if denom == 0 {
			return nil, ErrUncorrectable
		}
		// Forney, fcr=1: magnitude = Omega(Xinv) / Lambda'(Xinv).
		mag := f.Div(f.PolyEval(omega, xInv), denom)
		if mag == 0 {
			continue // erased position that was actually correct
		}
		pos := c.degreeToPos(d)
		var oldV byte
		if pos < c.k {
			oldV = data[pos]
		} else {
			oldV = check[pos-c.k]
		}
		corrections = append(corrections, Correction{
			Pos: pos, Old: oldV, New: oldV ^ byte(mag), Erasure: seen[pos],
		})
	}
	if found != degLambda {
		return nil, ErrUncorrectable
	}
	for _, corr := range corrections {
		if corr.Pos < c.k {
			data[corr.Pos] = corr.New
		} else {
			check[corr.Pos-c.k] = corr.New
		}
	}
	if _, clean := c.syndromes(data, check); !clean {
		for _, corr := range corrections { // roll back
			if corr.Pos < c.k {
				data[corr.Pos] = corr.Old
			} else {
				check[corr.Pos-c.k] = corr.Old
			}
		}
		return nil, ErrUncorrectable
	}
	return corrections, nil
}

// DecodeLimited performs an errors-only decode but accepts the result only
// when it applies at most threshold corrections. When the decode would
// require more, it returns ErrThreshold and leaves the inputs unchanged,
// signalling the caller to fall back to VLEW correction (paper Fig. 8/9).
func (c *Code) DecodeLimited(data, check []byte, threshold int) ([]Correction, error) {
	corrections, err := c.Decode(data, check, nil)
	if err != nil {
		return nil, err
	}
	if len(corrections) > threshold {
		for _, corr := range corrections { // roll back: reject the correction
			if corr.Pos < c.k {
				data[corr.Pos] = corr.Old
			} else {
				check[corr.Pos-c.k] = corr.Old
			}
		}
		return nil, ErrThreshold
	}
	return corrections, nil
}

// String implements fmt.Stringer.
func (c *Code) String() string {
	return fmt.Sprintf("RS(n=%d,k=%d,d=%d) over GF(2^8)", c.n, c.k, c.Distance())
}
