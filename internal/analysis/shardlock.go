package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardLock enforces the all-shard-lock discipline for rank-wide
// maintenance (DESIGN.md §9–§10): operations that remap the layout or
// walk the whole rank — boot scrub, degraded-mode entry/adoption, the
// online-migration protocol, patrol scrub — may only be invoked from
//
//   - a function whose doc comment carries //chipkill:rankwide (its
//     author asserts a rank-wide context: full quiescence, the
//     single-supervisor loop, or the migration cursor's single-writer
//     protocol), or
//   - a function literal passed directly to (*engine.Engine).Quiesce,
//     which holds every shard lock by construction.
//
// This catches the exact bug class the migration cursor was designed
// around: a rank-wide operation fired from demand-path code that holds
// one shard lock (or none) and races the other shards' view of the
// layout.
var ShardLock = &Analyzer{
	Name:          "shardlock",
	Doc:           "rank-wide maintenance operations only from //chipkill:rankwide functions or Quiesce sections",
	SkipTestFiles: true,
	Run:           runShardLock,
}

// rankWideMethods lists the policed operations as receiver-type/method
// sets, matched by package-path suffix so testdata stub modules
// exercise the analyzer without importing the real packages.
var rankWideMethods = []struct {
	pkgSuffix, typeName string
	methods             map[string]bool
}{
	{"internal/core", "Controller", map[string]bool{
		"BootScrub": true, "EnterDegradedMode": true, "AdoptDegradedMode": true,
		"BeginMigration": true, "JoinMigration": true, "MigrateBand": true,
		"RedoBand": true, "FinishMigration": true, "PatrolScrub": true,
	}},
	{"internal/engine", "Engine", map[string]bool{
		"BootScrub": true, "EnterDegradedMode": true, "AdoptDegradedMode": true,
		"BeginMigration": true, "MigrateBand": true,
		"RedoBand": true, "FinishMigration": true, "PatrolScrub": true,
	}},
}

// isRankWideOp reports whether fn is one of the policed operations.
func isRankWideOp(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	for _, set := range rankWideMethods {
		if set.methods[fn.Name()] && methodOn(fn, set.pkgSuffix, set.typeName, fn.Name()) {
			return true
		}
	}
	return false
}

// quiesceSpans returns the source ranges of function literals passed
// directly to (*engine.Engine).Quiesce in file: code inside them runs
// with every shard lock held.
func quiesceSpans(pkg *Package, file *ast.File) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if !methodOn(fn, "internal/engine", "Engine", "Quiesce") {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				spans = append(spans, [2]token.Pos{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	return spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, sp := range spans {
		if sp[0] <= pos && pos < sp[1] {
			return true
		}
	}
	return false
}

func runShardLock(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		spans := quiesceSpans(pass.Pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if !isRankWideOp(fn) {
				return true
			}
			if inSpans(spans, call.Pos()) {
				return true
			}
			if pass.Pkg.dirs.marked("rankwide", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"rank-wide operation %s called outside a //chipkill:rankwide function or Quiesce section",
				symbolKey(fn))
			return true
		})
	}
}
