package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperCode returns the paper's per-block RS(72,64) code.
func paperCode(t testing.TB) *Code {
	t.Helper()
	return Must(64, 8)
}

func TestCodeShape(t *testing.T) {
	c := paperCode(t)
	if c.K() != 64 || c.R() != 8 || c.N() != 72 {
		t.Fatalf("unexpected shape: k=%d r=%d n=%d", c.K(), c.R(), c.N())
	}
	if c.Distance() != 9 {
		t.Errorf("distance=%d, want 9", c.Distance())
	}
	if c.MaxErrors() != 4 {
		t.Errorf("MaxErrors=%d, want 4 (paper Sec V-C)", c.MaxErrors())
	}
	if c.MaxErasures() != 8 {
		t.Errorf("MaxErasures=%d, want 8 (chip failure = 8 bad bytes)", c.MaxErasures())
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, p := range [][2]int{{0, 8}, {64, 0}, {250, 8}, {-1, 4}} {
		if _, err := New(p[0], p[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", p[0], p[1])
		}
	}
}

func TestEncodeCheckClean(t *testing.T) {
	c := paperCode(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		if !c.Check(data, check) {
			t.Fatal("fresh codeword not clean")
		}
		corr, err := c.Decode(data, check, nil)
		if err != nil || len(corr) != 0 {
			t.Fatalf("clean decode: corr=%v err=%v", corr, err)
		}
	}
}

func TestCorrectsRandomByteErrors(t *testing.T) {
	c := paperCode(t)
	rng := rand.New(rand.NewSource(2))
	for e := 1; e <= c.MaxErrors(); e++ {
		for trial := 0; trial < 25; trial++ {
			data := make([]byte, c.K())
			rng.Read(data)
			check := c.Encode(data)
			origData, origCheck := bytes.Clone(data), bytes.Clone(check)
			positions := rng.Perm(c.N())[:e]
			for _, p := range positions {
				delta := byte(1 + rng.Intn(255))
				if p < c.K() {
					data[p] ^= delta
				} else {
					check[p-c.K()] ^= delta
				}
			}
			corr, err := c.Decode(data, check, nil)
			if err != nil {
				t.Fatalf("e=%d: %v", e, err)
			}
			if len(corr) != e {
				t.Fatalf("e=%d: corrected %d", e, len(corr))
			}
			if !bytes.Equal(data, origData) || !bytes.Equal(check, origCheck) {
				t.Fatalf("e=%d: wrong correction", e)
			}
		}
	}
}

func TestCorrectsChipFailureErasures(t *testing.T) {
	// A failed data chip contributes 8 consecutive bad bytes at a known
	// position; all 8 check bytes correct it via erasure decoding
	// (paper Sec V-B).
	c := paperCode(t)
	rng := rand.New(rand.NewSource(3))
	for chip := 0; chip < 8; chip++ {
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		orig := bytes.Clone(data)
		erasures := make([]int, 8)
		for i := 0; i < 8; i++ {
			pos := chip*8 + i
			erasures[i] = pos
			data[pos] = byte(rng.Intn(256)) // garbage from the dead chip
		}
		corr, err := c.Decode(data, check, erasures)
		if err != nil {
			t.Fatalf("chip %d: %v", chip, err)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("chip %d: reconstruction failed (%d corrections)", chip, len(corr))
		}
	}
}

func TestCorrectsParityChipErasure(t *testing.T) {
	// The parity chip failing erases all 8 check bytes; the data is intact
	// so re-encoding recovers them. Decode with 8 check-byte erasures must
	// also work.
	c := paperCode(t)
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, c.K())
	rng.Read(data)
	check := c.Encode(data)
	orig := bytes.Clone(check)
	erasures := make([]int, 8)
	for i := range erasures {
		erasures[i] = c.K() + i
		check[i] ^= byte(1 + rng.Intn(255))
	}
	if _, err := c.Decode(data, check, erasures); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(check, orig) {
		t.Fatal("check bytes not reconstructed")
	}
}

func TestErrorsPlusErasuresBudget(t *testing.T) {
	// 2*errors + erasures <= r: e.g. 2 errors + 4 erasures with r=8.
	c := paperCode(t)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, c.K())
	rng.Read(data)
	check := c.Encode(data)
	orig := bytes.Clone(data)
	perm := rng.Perm(c.K())
	erasures := perm[:4]
	errorsAt := perm[4:6]
	for _, p := range erasures {
		data[p] ^= byte(1 + rng.Intn(255))
	}
	for _, p := range errorsAt {
		data[p] ^= byte(1 + rng.Intn(255))
	}
	if _, err := c.Decode(data, check, erasures); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("mixed errors+erasures decode failed")
	}
}

func TestTooManyErasuresRejected(t *testing.T) {
	c := paperCode(t)
	data := make([]byte, c.K())
	check := c.Encode(data)
	erasures := make([]int, 9)
	for i := range erasures {
		erasures[i] = i
	}
	if _, err := c.Decode(data, check, erasures); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("9 erasures: err=%v, want ErrUncorrectable", err)
	}
}

func TestBadErasurePositions(t *testing.T) {
	c := paperCode(t)
	data := make([]byte, c.K())
	check := c.Encode(data)
	if _, err := c.Decode(data, check, []int{-1}); err == nil {
		t.Error("negative erasure accepted")
	}
	if _, err := c.Decode(data, check, []int{c.N()}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
	if _, err := c.Decode(data, check, []int{3, 3}); err == nil {
		t.Error("duplicate erasure accepted")
	}
}

func TestBeyondCapabilityDetectedOrConsistent(t *testing.T) {
	c := paperCode(t)
	rng := rand.New(rand.NewSource(6))
	uncorrectable := 0
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		e := 5 + rng.Intn(8) // beyond the 4-error capability
		for _, p := range rng.Perm(c.N())[:e] {
			if p < c.K() {
				data[p] ^= byte(1 + rng.Intn(255))
			} else {
				check[p-c.K()] ^= byte(1 + rng.Intn(255))
			}
		}
		before, beforeCheck := bytes.Clone(data), bytes.Clone(check)
		corr, err := c.Decode(data, check, nil)
		if err != nil {
			uncorrectable++
			if !bytes.Equal(data, before) || !bytes.Equal(check, beforeCheck) {
				t.Fatal("failed decode mutated inputs")
			}
			continue
		}
		// Miscorrection: must still land on a valid codeword.
		if !c.Check(data, check) {
			t.Fatal("successful decode produced a non-codeword")
		}
		if len(corr) > c.MaxErrors() {
			t.Fatalf("claimed %d corrections > capability", len(corr))
		}
	}
	if uncorrectable == 0 {
		t.Error("expected some uncorrectable patterns")
	}
	t.Logf("beyond-capability: %d/200 flagged uncorrectable", uncorrectable)
}

// TestSingleErrorEveryPosition sweeps a one-symbol error across every
// position of the paper's code, exercising the closed-form weight-1 decode
// path (geometric syndrome recognition) at all data and check offsets, and
// checks DecodeAppend reuses the caller's buffer without allocating.
func TestSingleErrorEveryPosition(t *testing.T) {
	c := paperCode(t)
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, c.K())
	rng.Read(data)
	check := c.Encode(data)
	wantData := bytes.Clone(data)
	wantCheck := bytes.Clone(check)
	buf := make([]Correction, 0, 8)
	for pos := 0; pos < c.N(); pos++ {
		mag := byte(1 + rng.Intn(255))
		if pos < c.K() {
			data[pos] ^= mag
		} else {
			check[pos-c.K()] ^= mag
		}
		corr, err := c.DecodeAppend(buf, data, check, nil)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if len(corr) != 1 || corr[0].Pos != pos || corr[0].Old^corr[0].New != mag {
			t.Fatalf("pos %d: got corrections %+v, want one at pos with magnitude %#x", pos, corr, mag)
		}
		if &corr[0] != &buf[:1][0] {
			t.Fatalf("pos %d: DecodeAppend did not reuse the caller's buffer", pos)
		}
		if !bytes.Equal(data, wantData) || !bytes.Equal(check, wantCheck) {
			t.Fatalf("pos %d: decode did not restore the codeword", pos)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		data[11] ^= 0x5A
		if _, err := c.DecodeAppend(buf, data, check, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("single-error DecodeAppend allocates %.1f per op, want 0", n)
	}
}

func TestDecodeLimitedThreshold(t *testing.T) {
	// Paper Sec V-C: accept RS corrections only when <= 2; otherwise leave
	// the block untouched for VLEW fallback.
	c := paperCode(t)
	rng := rand.New(rand.NewSource(7))
	for e := 0; e <= 4; e++ {
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		orig := bytes.Clone(data)
		for _, p := range rng.Perm(c.K())[:e] {
			data[p] ^= byte(1 + rng.Intn(255))
		}
		corrupted := bytes.Clone(data)
		corr, err := c.DecodeLimited(data, check, 2)
		if e <= 2 {
			if err != nil {
				t.Fatalf("e=%d: %v", e, err)
			}
			if len(corr) != e || !bytes.Equal(data, orig) {
				t.Fatalf("e=%d: bad accept path", e)
			}
		} else {
			if !errors.Is(err, ErrThreshold) {
				t.Fatalf("e=%d: err=%v, want ErrThreshold", e, err)
			}
			if !bytes.Equal(data, corrupted) {
				t.Fatalf("e=%d: rejected decode must not modify data", e)
			}
		}
	}
}

func TestEncodeDeltaMatchesFullReencode(t *testing.T) {
	c := paperCode(t)
	rng := rand.New(rand.NewSource(8))
	oldData := make([]byte, c.K())
	rng.Read(oldData)
	oldCheck := c.Encode(oldData)
	for off := 0; off < c.K(); off += 8 {
		newData := bytes.Clone(oldData)
		delta := make([]byte, 8)
		rng.Read(delta)
		for i := range delta {
			newData[off+i] ^= delta[i]
		}
		update := c.EncodeDelta(delta, off)
		got := bytes.Clone(oldCheck)
		for i := range got {
			got[i] ^= update[i]
		}
		if !bytes.Equal(got, c.Encode(newData)) {
			t.Fatalf("offset %d: incremental check update mismatch", off)
		}
	}
}

func TestCorrectionMetadata(t *testing.T) {
	c := paperCode(t)
	data := make([]byte, c.K())
	check := c.Encode(data)
	data[10] ^= 0x5A
	corr, err := c.Decode(data, check, nil)
	if err != nil || len(corr) != 1 {
		t.Fatalf("corr=%v err=%v", corr, err)
	}
	if corr[0].Pos != 10 || corr[0].Old != 0x5A || corr[0].New != 0 || corr[0].Erasure {
		t.Errorf("unexpected correction metadata: %+v", corr[0])
	}
}

// Property: random <=4-error patterns always round-trip on RS(72,64).
func TestRoundTripQuick(t *testing.T) {
	c := paperCode(t)
	prop := func(seed int64, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := int(eRaw) % (c.MaxErrors() + 1)
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		want := bytes.Clone(data)
		for _, p := range rng.Perm(c.K())[:e] {
			data[p] ^= byte(1 + rng.Intn(255))
		}
		corr, err := c.Decode(data, check, nil)
		return err == nil && len(corr) == e && bytes.Equal(data, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: erasure-only decoding recovers any <=8 erased bytes.
func TestErasureQuick(t *testing.T) {
	c := paperCode(t)
	prop := func(seed int64, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := int(eRaw) % (c.MaxErasures() + 1)
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		want := bytes.Clone(data)
		erasures := rng.Perm(c.K())[:e]
		for _, p := range erasures {
			data[p] = byte(rng.Intn(256))
		}
		_, err := c.Decode(data, check, erasures)
		return err == nil && bytes.Equal(data, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeBlock(b *testing.B) {
	c := Must(64, 8)
	data := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(data)
	}
}

func BenchmarkDecode2Errors(b *testing.B) {
	c := Must(64, 8)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64)
	rng.Read(data)
	check := c.Encode(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := bytes.Clone(data)
		ch := bytes.Clone(check)
		d[5] ^= 0xA5
		d[40] ^= 0x3C
		b.StartTimer()
		if _, err := c.Decode(d, ch, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParameterSweep exercises the codec across (k, r) shapes beyond the
// paper's RS(72,64): every shape must correct floor(r/2) errors and r
// erasures.
func TestParameterSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, shape := range [][2]int{{16, 4}, {32, 6}, {64, 8}, {128, 16}, {223, 32}} {
		c, err := New(shape[0], shape[1])
		if err != nil {
			t.Fatalf("New(%v): %v", shape, err)
		}
		data := make([]byte, c.K())
		rng.Read(data)
		check := c.Encode(data)
		orig := bytes.Clone(data)

		// Max random errors.
		for _, p := range rng.Perm(c.K())[:c.MaxErrors()] {
			data[p] ^= byte(1 + rng.Intn(255))
		}
		if _, err := c.Decode(data, check, nil); err != nil || !bytes.Equal(data, orig) {
			t.Fatalf("shape %v: max-error decode failed: %v", shape, err)
		}

		// Max erasures.
		erasures := rng.Perm(c.K())[:c.MaxErasures()]
		for _, p := range erasures {
			data[p] = byte(rng.Intn(256))
		}
		if _, err := c.Decode(data, check, erasures); err != nil || !bytes.Equal(data, orig) {
			t.Fatalf("shape %v: max-erasure decode failed: %v", shape, err)
		}
	}
}
